// Command dcsim runs one Setup-2 datacenter consolidation simulation:
// synthetic day-long traces, a chosen placement policy, and static or
// dynamic voltage/frequency scaling. It prints Table-II-style results plus
// the per-period breakdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/vmmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcsim: ")
	var (
		policy  = flag.String("policy", "corr", "placement policy: ffd, bfd, pcp, jointvm, corr")
		vms     = flag.Int("vms", 40, "number of VM traces")
		groups  = flag.Int("groups", 8, "number of correlated service groups")
		servers = flag.Int("servers", 20, "server pool size")
		hours   = flag.Int("hours", 24, "trace horizon in hours")
		seed    = flag.Int64("seed", 1, "trace generator seed")
		dynamic = flag.Bool("dynamic", false, "rescale v/f every minute instead of per period")
		pctl    = flag.Float64("pctl", 1, "reference percentile for û (1 = peak)")
		periods = flag.Bool("periods", false, "print the per-period breakdown")
	)
	flag.Parse()

	dcfg := synth.DefaultDatacenterConfig()
	dcfg.VMs = *vms
	dcfg.Groups = *groups
	dcfg.Day = time.Duration(*hours) * time.Hour
	dcfg.Seed = *seed
	ds := synth.Datacenter(dcfg)
	vmList := vmmodel.FromSeries(ds.Names, ds.Fine)

	cfg := sim.Config{
		Spec:          server.XeonE5410(),
		Power:         power.XeonE5410(),
		MaxServers:    *servers,
		PeriodSamples: 720,
		Pctl:          *pctl,
		Predictor:     predict.LastValue{},
	}
	if *dynamic {
		cfg.RescaleEvery = 12
	}
	switch *policy {
	case "ffd":
		cfg.Policy = place.FFD{}
		cfg.Governor = sim.WorstCase{}
	case "bfd":
		cfg.Policy = place.BFD{}
		cfg.Governor = sim.WorstCase{}
	case "pcp":
		cfg.Policy = place.PCP{}
		cfg.Governor = sim.WorstCase{}
	case "jointvm":
		cfg.Policy = place.JointVM{}
		cfg.Governor = sim.WorstCase{}
	case "corr":
		m := core.NewCostMatrix(len(vmList), *pctl)
		cfg.Matrix = m
		cfg.Policy = &core.Allocator{Config: core.Config{Pctl: *pctl, THCost: 1.15, Alpha: 0.9}, Matrix: m}
		cfg.Governor = sim.CorrAware{Matrix: m}
	default:
		log.Fatalf("unknown policy %q (want ffd, bfd, pcp, or corr)", *policy)
	}

	res, err := sim.Run(vmList, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mode := "static"
	if *dynamic {
		mode = "dynamic"
	}
	fmt.Printf("policy=%s governor=%s mode=%s vms=%d servers<=%d horizon=%dh seed=%d\n",
		res.Policy, res.Governor, mode, len(vmList), *servers, *hours, *seed)
	fmt.Printf("energy          %.1f kJ (mean %.0f W)\n", res.EnergyJ/1000, res.MeanPowerW)
	fmt.Printf("max violations  %.1f %%\n", res.MaxViolationPct)
	fmt.Printf("mean violations %.1f %%\n", res.MeanViolationPct)
	fmt.Printf("mean active     %.1f servers\n", res.MeanActive)
	fmt.Printf("migrations      %d\n", res.TotalMigrations)
	if *periods {
		t := report.NewTable("period", "active", "energy (kJ)", "max viol (%)")
		for _, p := range res.Periods {
			t.AddRow(fmt.Sprint(p.Period), fmt.Sprint(p.ActiveServers),
				fmt.Sprintf("%.1f", p.EnergyJ/1000), fmt.Sprintf("%.1f", p.MaxViolationPct))
		}
		fmt.Print(t)
	}
}
