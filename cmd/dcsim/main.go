// Command dcsim runs one Setup-2 datacenter consolidation simulation
// through the public pkg/dcsim façade: a synthetic day of traces, a
// placement policy and frequency governor selected by registry name, and
// Table-II-style results. Scenarios can also be loaded from JSON files
// (-scenario), and -progress streams per-period metrics while the run is in
// flight; Ctrl-C cancels the run and prints the partial result.
//
// The sweep subcommand ("dcsim sweep -grid file.json") fans a whole grid of
// scenarios out over a worker pool and writes aggregate JSON and CSV
// reports; see cmd/dcsim/sweep.go and examples/grids/. With -remote the
// grid fans out to HTTP workers instead — each one a "dcsim worker
// -listen addr" process — with byte-identical aggregates either way; the
// worker subcommand serves health, capability listing, and cell execution
// (see pkg/dcsim/sweep/remote). With -fleet the worker set is elastic:
// workers join with "dcsim worker -register", heartbeat, and may come and
// go mid-sweep — joiners absorb queued runs, the runs of dead workers are
// stolen back and re-executed — still with byte-identical aggregates (see
// pkg/dcsim/sweep/fleet).
//
// The serve subcommand ("dcsim serve -listen addr") runs the long-lived
// simulation service: a job queue accepting sweep grids over HTTP,
// Server-Sent-Events progress streaming, and an OpenMetrics exporter (see
// cmd/dcsim/serve.go and pkg/dcsim/service).
//
// The objserve subcommand ("dcsim objserve -dir recording") serves a
// recorded trace directory as a minimal static object store — strong
// ETags, range reads, optional transient-fault injection — which is the
// protocol surface the diskless "trace-obj" workload kind consumes (see
// cmd/dcsim/objserve.go).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/pkg/dcsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dcsim: ")
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		workerMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "objserve" {
		objserveMain(os.Args[2:])
		return
	}
	def := dcsim.DefaultScenario()
	var (
		scenario  = flag.String("scenario", "", "JSON scenario file (explicitly set flags override it)")
		workload  = flag.String("workload", def.Workload.Kind, "workload kind: "+strings.Join(dcsim.WorkloadKinds(), ", "))
		tracedir  = flag.String("tracedir", "", "recorded trace directory for the trace-dir workload kind (see tracegen -dir)")
		objstore  = flag.String("objstore", "", "http(s) bucket/prefix URL for the trace-obj workload kind (see dcsim objserve)")
		policy    = flag.String("policy", def.Policy, "placement policy: "+strings.Join(dcsim.Policies(), ", "))
		governor  = flag.String("governor", "", "frequency governor: "+strings.Join(dcsim.Governors(), ", ")+" (default pairs with the policy)")
		predictor = flag.String("predictor", def.Predictor, "predictor: "+strings.Join(dcsim.Predictors(), ", "))
		vms       = flag.Int("vms", def.Workload.VMs, "number of VM traces")
		groups    = flag.Int("groups", def.Workload.Groups, "number of correlated service groups")
		servers   = flag.Int("servers", def.MaxServers, "server pool size")
		hours     = flag.Int("hours", def.Workload.Hours, "trace horizon in hours")
		seed      = flag.Int64("seed", def.Workload.Seed, "trace generator seed")
		dynamic   = flag.Bool("dynamic", false, "rescale v/f every minute instead of per period")
		pctl      = flag.Float64("pctl", def.Pctl, "reference percentile for û (1 = peak)")
		periods   = flag.Bool("periods", false, "print the per-period breakdown")
		progress  = flag.Bool("progress", false, "stream per-period metrics while running")
	)
	var wopts kvFlag
	flag.Var(&wopts, "wopt", "workload backend option key=value, repeatable (e.g. -wopt cache_mb=64; see the kind's docs)")
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	sc := dcsim.DefaultScenario()
	if *scenario != "" {
		var err error
		sc, err = dcsim.LoadScenario(*scenario)
		if err != nil {
			log.Fatal(err)
		}
	}
	// A flag applies when set explicitly, or — without a scenario file —
	// through its default (which mirrors DefaultScenario, so -help shows
	// the real values).
	use := func(name string) bool { return set[name] || *scenario == "" }
	if use("workload") {
		sc.Workload.Kind = *workload
	}
	if set["tracedir"] && set["objstore"] {
		log.Fatal("-tracedir and -objstore are mutually exclusive (one recording location)")
	}
	if set["tracedir"] {
		sc.Workload.Path = *tracedir
		if !set["workload"] && sc.Workload.Kind == def.Workload.Kind {
			// A trace directory implies the trace-dir kind; requiring both
			// flags for the common case would just invite mismatches.
			sc.Workload.Kind = "trace-dir"
		}
	}
	if set["objstore"] {
		// Same rule as -tracedir: the object-store URL implies its kind.
		sc.Workload.Path = *objstore
		if !set["workload"] && sc.Workload.Kind == def.Workload.Kind {
			sc.Workload.Kind = "trace-obj"
		}
	}
	if err := applyWorkloadOptions(&sc.Workload, wopts); err != nil {
		log.Fatal(err)
	}
	if use("policy") {
		sc.Policy = *policy
	}
	switch {
	case set["governor"]:
		sc.Governor = *governor
	case set["policy"] || *scenario == "":
		// Clear the governor so Normalized re-pairs it with the chosen
		// policy (eqn4 for corr-aware, worst-case for the baselines).
		sc.Governor = ""
	}
	if use("predictor") {
		sc.Predictor = *predictor
	}
	if use("vms") {
		sc.Workload.VMs = *vms
	}
	if use("groups") {
		sc.Workload.Groups = *groups
	}
	if use("servers") {
		sc.MaxServers = *servers
	}
	if use("hours") {
		sc.Workload.Hours = *hours
	}
	if use("seed") {
		sc.Workload.Seed = *seed
	}
	if use("pctl") {
		sc.Pctl = *pctl
	}
	if set["dynamic"] || *scenario == "" {
		if *dynamic {
			sc.RescaleEvery = 12
		} else {
			sc.RescaleEvery = 0
		}
	}
	// Echo (and run) the effective configuration: a sparse scenario's
	// unset fields are filled with their defaults.
	sc = sc.Normalized()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var obs []dcsim.Observer
	if *progress {
		obs = append(obs, dcsim.PeriodFunc(func(p dcsim.Period) {
			fmt.Printf("period %3d  active=%2d  energy=%.1f kJ  maxViol=%.1f%%  migrations=%d\n",
				p.Period, p.ActiveServers, p.EnergyJ/1000, p.MaxViolationPct, p.Migrations)
		}))
	}

	res, err := dcsim.Run(ctx, sc, obs...)
	if err != nil {
		if res == nil {
			log.Fatal(err)
		}
		fmt.Printf("run stopped early (%v); partial result over %d periods:\n", err, len(res.Periods))
	}
	mode := "static"
	if sc.RescaleEvery > 0 {
		mode = "dynamic"
	}
	fmt.Printf("policy=%s governor=%s mode=%s vms=%d servers<=%d horizon=%dh seed=%d\n",
		res.Policy, res.Governor, mode, sc.Workload.VMs, sc.MaxServers, sc.Workload.Hours, sc.Workload.Seed)
	fmt.Printf("energy          %.1f kJ (mean %.0f W)\n", res.EnergyJ/1000, res.MeanPowerW)
	fmt.Printf("max violations  %.1f %%\n", res.MaxViolationPct)
	fmt.Printf("mean violations %.1f %%\n", res.MeanViolationPct)
	fmt.Printf("mean active     %.1f servers\n", res.MeanActive)
	fmt.Printf("migrations      %d\n", res.TotalMigrations)
	if *periods {
		t := dcsim.NewTable("period", "active", "energy (kJ)", "max viol (%)")
		for _, p := range res.Periods {
			t.AddRow(fmt.Sprint(p.Period), fmt.Sprint(p.ActiveServers),
				fmt.Sprintf("%.1f", p.EnergyJ/1000), fmt.Sprintf("%.1f", p.MaxViolationPct))
		}
		fmt.Print(t)
	}
}
