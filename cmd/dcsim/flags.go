package main

import (
	"fmt"
	"strings"

	"repro/pkg/dcsim"
)

// kvFlag collects a repeatable key=value flag (-wopt cache_mb=64 -wopt
// retries=2).
type kvFlag []string

// String implements flag.Value.
func (f *kvFlag) String() string { return strings.Join(*f, ",") }

// Set implements flag.Value.
func (f *kvFlag) Set(s string) error {
	*f = append(*f, s)
	return nil
}

// applyWorkloadOptions parses each key=value pair onto the workload's
// kind-scoped options. Which keys are legal is the selected backend's
// call — validation rejects unread keys later — but the pair shape is
// checked here so a dropped "=" fails at the flag, not as a weird key.
func applyWorkloadOptions(w *dcsim.Workload, pairs []string) error {
	for _, kv := range pairs {
		key, value, ok := strings.Cut(kv, "=")
		if !ok || key == "" {
			return fmt.Errorf("-wopt needs key=value, got %q", kv)
		}
		w.SetOption(key, value)
	}
	return nil
}
