package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"repro/internal/objstore"
)

// objserveMain implements "dcsim objserve": a minimal static object store
// over a recorded trace directory — strong ETags (content sha256), range
// reads, HEAD — which is exactly the protocol surface the "trace-obj"
// workload kind consumes. It exists so diskless-worker setups can be
// exercised and smoke-tested with no external object store; it is a test
// fixture with a listen flag, not a production file server. -fail-first
// answers 503 to the first N requests, letting scripts prove the fetcher's
// transient-fault retry heals real faults.
func objserveMain(args []string) {
	fs := flag.NewFlagSet("dcsim objserve", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "address to serve the object store on")
		dir       = fs.String("dir", "", "recorded trace directory to serve (required; see tracegen -dir)")
		failFirst = fs.Int64("fail-first", 0, "answer 503 to the first N requests (transient-fault injection)")
		quiet     = fs.Bool("quiet", false, "do not log per-request lines")
	)
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		log.Fatal("objserve: -dir is required")
	}
	if info, err := os.Stat(*dir); err != nil || !info.IsDir() {
		log.Fatalf("objserve: -dir %q is not a readable directory", *dir)
	}

	h := &objstore.DirServer{Dir: *dir}
	if !*quiet {
		h.Logf = log.Printf
	}
	h.FailFirst(*failFirst)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	// The URL line is the machine-readable part of the output — scripts
	// capture it — so it goes to stdout while logging stays on stderr.
	fmt.Printf("http://%s\n", ln.Addr())
	log.Printf("objserve: serving %s on http://%s (fail-first=%d)", *dir, ln.Addr(), *failFirst)

	srv := &http.Server{Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		srv.Close()
	}
}
