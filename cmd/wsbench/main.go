// Command wsbench runs the Setup-1 web-search cluster experiment: two
// clusters driven by sine/cosine client waves under a placement selected by
// registry name and a chosen frequency, reporting per-cluster response-time
// percentiles and utilization summaries.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/pkg/dcsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wsbench: ")
	var (
		mode     = flag.String("placement", "shared-corr", "placement: "+strings.Join(dcsim.WebSearchPlacements(), ", "))
		speed    = flag.Float64("speed", 1.0, "relative frequency f/fmax")
		duration = flag.Float64("duration", 1200, "simulated seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		csvOut   = flag.String("csv", "", "write per-second utilization traces to this CSV file")
	)
	flag.Parse()

	res, err := dcsim.RunWebSearch(dcsim.WebSearchScenario{
		Placement: *mode,
		Speed:     *speed,
		Duration:  *duration,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement=%s speed=%.3f duration=%.0fs\n", res.PlacementName, *speed, *duration)
	t := dcsim.NewTable("cluster", "queries", "mean (s)", "p90 (s)")
	for c := range res.P90 {
		t.AddRow(fmt.Sprintf("cluster%d", c+1), fmt.Sprint(res.Queries[c]),
			fmt.Sprintf("%.3f", res.Mean[c]), fmt.Sprintf("%.3f", res.P90[c]))
	}
	fmt.Print(t)
	for i, pu := range res.PoolUtil {
		fmt.Printf("pool%d util  %s  peak(30s)=%.2f\n",
			i, dcsim.Sparkline(pu, 64, 0, 1), pu.Downsample(30).Max())
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		names := []string{}
		series := []*dcsim.Series{}
		for i, s := range res.VMUtil {
			names = append(names, res.ISNNames[i])
			series = append(series, s)
		}
		for c, s := range res.ClientTrace {
			names = append(names, fmt.Sprintf("clients%d", c+1))
			series = append(series, s)
		}
		if err := dcsim.WriteCSV(f, names, series); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
}
