// Command experiments regenerates every table and figure of the paper's
// evaluation (Figs 1, 3-6; Tables I, II(a), II(b)) plus the ablation
// studies, each selected by registry name and printed as text. Run with
// -quick for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/pkg/dcsim/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "run shortened horizons (smoke test)")
	workers := flag.Int("workers", 1, "sweep-engine parallelism for the ablation studies (results are identical at any count)")
	only := flag.String("only", "", "comma-separated subset: "+
		strings.Join(experiments.Names(), ",")+",ablations")
	flag.Parse()

	known := map[string]bool{"ablations": true}
	for _, n := range experiments.Names() {
		known[n] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(strings.ToLower(k))
			if !known[k] {
				log.Fatalf("unknown artifact %q (have %s, ablations)",
					k, strings.Join(experiments.Names(), ", "))
			}
			want[k] = true
		}
	}
	pick := func(key string) bool { return len(want) == 0 || want[key] }

	if want["ablations"] {
		for _, a := range experiments.Ablations() {
			want[a] = true
		}
	}
	o := experiments.Full()
	if *quick {
		o = experiments.Quick()
	}
	o.Workers = *workers

	// Iterate the live registry so late registrations run too; built-ins
	// are registered in the paper's presentation order.
	for _, name := range experiments.Names() {
		if !pick(name) {
			continue
		}
		res, err := experiments.RunOptions(name, o)
		if err != nil {
			log.Printf("%s failed: %v", name, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
}
