// Command experiments regenerates every table and figure of the paper's
// evaluation (Figs 1, 3-6; Tables I, II(a), II(b)) plus the ablation
// studies, printing each as text. Run with -quick for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "run shortened horizons (smoke test)")
	only := flag.String("only", "", "comma-separated subset: fig1,tablei,fig3,fig4,fig5,tableiia,tableiib,fig6,extended,gating,ablations")
	flag.Parse()

	o := exp.Full()
	if *quick {
		o = exp.Quick()
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	pick := func(key string) bool { return len(want) == 0 || want[key] }

	type artifact struct {
		key string
		run func() (fmt.Stringer, error)
	}
	artifacts := []artifact{
		{"fig1", func() (fmt.Stringer, error) { return exp.Fig1(o) }},
		{"tablei", func() (fmt.Stringer, error) { return exp.TableI(o) }},
		{"fig3", func() (fmt.Stringer, error) { return exp.Fig3(o) }},
		{"fig4", func() (fmt.Stringer, error) { return exp.Fig4(o) }},
		{"fig5", func() (fmt.Stringer, error) { return exp.Fig5(o) }},
		{"tableiia", func() (fmt.Stringer, error) { return exp.TableII(o, false) }},
		{"tableiib", func() (fmt.Stringer, error) { return exp.TableII(o, true) }},
		{"fig6", func() (fmt.Stringer, error) { return exp.Fig6(o) }},
		{"extended", func() (fmt.Stringer, error) { return exp.TableIIExtended(o, false) }},
		{"gating", func() (fmt.Stringer, error) { return exp.PowerGating(o) }},
	}
	for _, a := range artifacts {
		if !pick(a.key) {
			continue
		}
		res, err := a.run()
		if err != nil {
			log.Printf("%s failed: %v", a.key, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}

	if pick("ablations") {
		type ab struct {
			name string
			run  func(exp.Options) (*exp.AblationResult, error)
		}
		for _, a := range []ab{
			{"A1", exp.AblationThreshold},
			{"A2", exp.AblationReference},
			{"A3", exp.AblationPredictor},
			{"A4", exp.AblationMetric},
			{"A5", exp.AblationCorrelationStructure},
			{"A6", exp.AblationMatrixWindow},
			{"A7", exp.AblationLevels},
			{"A8", exp.AblationOracle},
		} {
			res, err := a.run(o)
			if err != nil {
				log.Printf("ablation %s failed: %v", a.name, err)
				os.Exit(1)
			}
			fmt.Println(res)
		}
	}
}
